// Command ecost-sim runs one workload scenario through a mapping policy
// on a simulated cluster — either in batch mode (the Figure-9 runner) or
// as an online, event-driven simulation with Poisson arrivals through
// the full ECoST pipeline (profile → classify → queue → pair → tune).
//
// Usage:
//
//	ecost-sim -scenario WS4 -policy ECoST -nodes 4
//	ecost-sim -scenario WS8 -online -nodes 2 -arrival 120
//	ecost-sim -scenario WS4 -online -nodes 256 -jobs 2000 -arrival 6
//	ecost-sim -scenario WS4 -online -metrics
//	ecost-sim -scenario WS4 -online -trace-out trace.json -edp-report
//	ecost-sim -scenario WS4 -online -quality-report
//	ecost-sim -scenario WS4 -online -serve :9090
//
// -metrics appends an observability snapshot of the online run (queue
// depth, per-class wait latency, pairing-tree outcomes, STP prediction
// telemetry, energy split by occupancy phase). The snapshot is
// deterministic: two runs with the same flags produce byte-identical
// output. -metrics-volatile additionally includes wall-clock sections,
// which vary run to run.
//
// -trace-out writes a Chrome trace_event JSON of the run's spans (job
// lifecycle, map/reduce phases, per-node occupancy) loadable in
// Perfetto or chrome://tracing; -timeline-out writes the same spans as
// a deterministic text timeline; -edp-report prints the per-job and
// per-class energy/EDP attribution rollup. -quality-report prints the
// decision-quality report (classifier confusion, predicted-vs-realized
// STP error, co-location interference, oracle regret, drift alerts)
// built from the per-decision audit log. -serve exposes all of the
// above plus Prometheus /metrics, the audit log as /decisions JSONL,
// the quality report as /quality, and /debug/pprof/ over HTTP, live
// during the run and until interrupted afterwards.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"

	"ecost/internal/audit"
	"ecost/internal/cliutil"
	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/trace"
	"ecost/internal/tracing"
)

func main() {
	scenario := flag.String("scenario", "WS4", "workload scenario WS1..WS8")
	policy := flag.String("policy", "ECoST", "mapping policy: SM, MNM1, MNM2, SNM, CBM, PTM, ECoST, UB")
	nodes := flag.Int("nodes", 4, "cluster size")
	online := flag.Bool("online", false, "run the event-driven online scheduler instead of batch mapping")
	arrival := flag.Float64("arrival", 0, "mean inter-arrival seconds for -online (0 = all at t=0)")
	jobs := flag.Int("jobs", 0, "scale the online job stream to this many jobs by cycling the scenario's list (0 = scenario as-is; requires -online)")
	seed := flag.Int64("seed", 42, "random seed")
	emitMetrics := flag.Bool("metrics", false, "collect and print an observability snapshot (implies -online)")
	metricsJSON := flag.Bool("metrics-json", false, "print the -metrics snapshot as JSON instead of text")
	metricsVolatile := flag.Bool("metrics-volatile", false, "include wall-clock (non-deterministic) sections in the -metrics snapshot")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the online run to this file (requires -online)")
	timelineOut := flag.String("timeline-out", "", "write the deterministic span timeline of the online run to this file (requires -online)")
	edpReport := flag.Bool("edp-report", false, "print the per-job / per-class EDP attribution report after the online run (requires -online)")
	qualityReport := flag.Bool("quality-report", false, "print the decision-quality report (confusion, STP error, regret, drift) after the online run (requires -online)")
	serveAddr := flag.String("serve", "", "serve /metrics, /trace, /report, /decisions, /quality, and /debug/pprof/ on this address during and after the online run (requires -online)")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	flag.Parse()

	if err := cliutil.SetupLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(cliutil.ExitUsage)
	}
	if *emitMetrics && !*online {
		slog.Warn("-metrics instruments the online scheduler; enabling -online")
		*online = true
	}
	if msg := (runFlags{
		Online:          *online,
		Nodes:           *nodes,
		Jobs:            *jobs,
		Metrics:         *emitMetrics,
		MetricsJSON:     *metricsJSON,
		MetricsVolatile: *metricsVolatile,
		TraceOut:        *traceOut,
		TimelineOut:     *timelineOut,
		EDPReport:       *edpReport,
		QualityReport:   *qualityReport,
		ServeAddr:       *serveAddr,
	}).contradiction(); msg != "" {
		cliutil.Usagef(msg)
	}

	wl, err := core.Scenario(*scenario)
	if err != nil {
		cliutil.Usagef("bad -scenario", "err", err)
	}
	fmt.Printf("scenario %s %s\n%s\n\n", wl.Name, wl.ClassSignature(), wl.AppSignature())

	slog.Info("building environment (database + models)")
	env, err := experiments.NewEnv(experiments.FastOptions())
	if err != nil {
		cliutil.Fatalf("building environment failed", "err", err)
	}

	if *online {
		var reg *metrics.Registry
		if *emitMetrics || *serveAddr != "" {
			reg = metrics.NewRegistry()
		}
		eng := sim.NewEngine()
		var tr *tracing.Tracer
		if *traceOut != "" || *timelineOut != "" || *edpReport || *serveAddr != "" {
			tr = tracing.New(eng.Clock())
		}
		var aud *audit.Log
		if *qualityReport || *serveAddr != "" {
			aud = audit.NewLog(audit.DriftConfig{})
		}
		qualityOracle := core.NewAuditOracle(env.Oracle)
		var srv *http.Server
		if *serveAddr != "" {
			ln, err := net.Listen("tcp", *serveAddr)
			if err != nil {
				cliutil.Fatalf("-serve listen failed", "err", err)
			}
			srv = &http.Server{Handler: newServeMux(reg, tr, aud, qualityOracle, *metricsVolatile)}
			go func() {
				if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
					slog.Error("observability server failed", "err", err)
				}
			}()
			fmt.Fprintf(os.Stderr, "serving observability endpoints on http://%s/\n", ln.Addr())
		}
		runOnline(env, wl, eng, tr, aud, *nodes, *jobs, *arrival, *seed, reg)
		if *traceOut != "" {
			if err := writeArtifact(*traceOut, tr.WriteChromeTrace); err != nil {
				cliutil.Fatalf("writing -trace-out failed", "err", err)
			}
			slog.Info("wrote Chrome trace", "path", *traceOut)
		}
		if *timelineOut != "" {
			if err := writeArtifact(*timelineOut, tr.WriteTimeline); err != nil {
				cliutil.Fatalf("writing -timeline-out failed", "err", err)
			}
			slog.Info("wrote span timeline", "path", *timelineOut)
		}
		if *edpReport {
			fmt.Println()
			if err := tr.Report().WriteText(os.Stdout); err != nil {
				cliutil.Fatalf("writing -edp-report failed", "err", err)
			}
		}
		if *qualityReport {
			fmt.Println()
			if err := aud.Quality(qualityOracle).WriteText(os.Stdout); err != nil {
				cliutil.Fatalf("writing -quality-report failed", "err", err)
			}
		}
		if *emitMetrics {
			fmt.Println()
			snap := reg.Snapshot(*metricsVolatile)
			var werr error
			if *metricsJSON {
				werr = snap.WriteJSON(os.Stdout)
			} else {
				werr = snap.WriteText(os.Stdout)
			}
			if werr != nil {
				cliutil.Fatalf("writing -metrics snapshot failed", "err", werr)
			}
		}
		if srv != nil {
			fmt.Fprintln(os.Stderr, "run finished; endpoints stay up — interrupt (Ctrl-C) to exit")
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			<-ctx.Done()
			stop()
			srv.Close()
		}
		return
	}

	var pol core.Policy
	found := false
	for _, p := range core.Policies() {
		if p.String() == *policy {
			pol, found = p, true
		}
	}
	if !found {
		cliutil.Usagef("unknown -policy", "policy", *policy)
	}
	runner := &core.PolicyRunner{Oracle: env.Oracle, DB: env.DB, Tuner: env.LkT, Profiler: env.Profiler}
	res, err := runner.Run(pol, wl, *nodes)
	if err != nil {
		cliutil.Fatalf("policy run failed", "policy", pol.String(), "err", err)
	}
	ub, err := runner.Run(core.UB, wl, *nodes)
	if err != nil {
		cliutil.Fatalf("UB baseline run failed", "err", err)
	}
	fmt.Printf("policy %v on %d node(s):\n", pol, *nodes)
	fmt.Printf("  makespan  %.0f s\n", res.Makespan)
	fmt.Printf("  energy    %.0f J\n", res.EnergyJ)
	fmt.Printf("  EDP       %.4g J·s\n", res.EDP)
	fmt.Printf("  vs UB     %.2fx (UB EDP %.4g)\n", res.EDP/ub.EDP, ub.EDP)
}

// writeArtifact streams one exporter into a freshly created file.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runOnline(env *experiments.Env, wl core.Workload, eng *sim.Engine, tr *tracing.Tracer, aud *audit.Log, nodes, jobs int, arrival float64, seed int64, reg *metrics.Registry) {
	model := mapreduce.NewModel(cluster.AtomC2758())
	// Recurring jobs re-ask the tuner the same question; the memo cache
	// answers repeats in one lookup. MeteredSTP unwraps it for the
	// deterministic scan-size metric and the hit/miss counters are
	// volatile, so -metrics snapshots are byte-identical either way.
	memo := core.NewMemoSTP(env.LkT, reg)
	var tuner core.STP = memo
	if reg != nil {
		// The model here is private to the online run, so steady-state
		// telemetry stays scoped to it; the STP wrapper adds prediction
		// counters and the predicted-vs-realized EDP error.
		model.Metrics = reg
		tuner = core.NewMeteredSTP(memo, model, reg)
	}
	sched, err := core.NewOnlineScheduler(eng, model, env.DB, tuner, env.Profiler, nodes)
	if err != nil {
		cliutil.Fatalf("building online scheduler failed", "err", err)
	}
	sched.SetMetrics(reg)
	sched.SetTracer(tr)
	sched.SetAudit(aud)
	stream := wl.Jobs
	if jobs > 0 {
		// -jobs scale-out: cycle the scenario's job list to the requested
		// stream length, modelling the recurring production workloads the
		// large-cluster path is built for.
		stream = make([]core.JobSpec, jobs)
		for i := range stream {
			stream[i] = wl.Jobs[i%len(wl.Jobs)]
		}
	}
	rng := sim.NewRNG(seed)
	at := 0.0
	arrivals := make([]trace.Arrival, 0, len(stream))
	for _, j := range stream {
		arrivals = append(arrivals, trace.Arrival{At: at, App: j.App, SizeGB: j.SizeGB})
		sched.Submit(j.App, j.SizeGB, at)
		if arrival > 0 {
			at += rng.Exp(arrival)
		}
	}
	trace.Record(arrivals, reg)
	makespan, energy, err := sched.Run()
	if err != nil {
		cliutil.Fatalf("online run failed", "err", err)
	}
	fmt.Printf("online ECoST on %d node(s), mean inter-arrival %.0fs:\n", nodes, arrival)
	fmt.Printf("  makespan %.0f s, energy %.0f J, EDP %.4g J·s\n\n", makespan, energy, energy*makespan)
	if jobs > 0 {
		fmt.Printf("%d jobs completed (per-job table suppressed for -jobs scale-out runs)\n", len(sched.Completed()))
		return
	}
	fmt.Printf("%-4s %-5s %-6s %-5s %9s %9s %9s %5s %s\n",
		"id", "app", "class", "size", "submit", "start", "finish", "node", "config")
	for _, c := range sched.Completed() {
		fmt.Printf("%-4d %-5s %-6v %4.0fG %9.0f %9.0f %9.0f %5d %v\n",
			c.ID, c.App, c.Class, c.SizeGB, c.Submitted, c.Started, c.Finished, c.Node, c.Cfg)
	}
}

// Command ecost-sim runs one workload scenario through a mapping policy
// on a simulated cluster — either in batch mode (the Figure-9 runner) or
// as an online, event-driven simulation with Poisson arrivals through
// the full ECoST pipeline (profile → classify → queue → pair → tune).
//
// Usage:
//
//	ecost-sim -scenario WS4 -policy ECoST -nodes 4
//	ecost-sim -scenario WS8 -online -nodes 2 -arrival 120
//	ecost-sim -scenario WS4 -online -metrics
//
// -metrics appends an observability snapshot of the online run (queue
// depth, per-class wait latency, pairing-tree outcomes, STP prediction
// telemetry, energy split by occupancy phase). The snapshot is
// deterministic: two runs with the same flags produce byte-identical
// output. -metrics-volatile additionally includes wall-clock sections,
// which vary run to run.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "WS4", "workload scenario WS1..WS8")
	policy := flag.String("policy", "ECoST", "mapping policy: SM, MNM1, MNM2, SNM, CBM, PTM, ECoST, UB")
	nodes := flag.Int("nodes", 4, "cluster size")
	online := flag.Bool("online", false, "run the event-driven online scheduler instead of batch mapping")
	arrival := flag.Float64("arrival", 0, "mean inter-arrival seconds for -online (0 = all at t=0)")
	seed := flag.Int64("seed", 42, "random seed")
	emitMetrics := flag.Bool("metrics", false, "collect and print an observability snapshot (implies -online)")
	metricsJSON := flag.Bool("metrics-json", false, "print the -metrics snapshot as JSON instead of text")
	metricsVolatile := flag.Bool("metrics-volatile", false, "include wall-clock (non-deterministic) sections in the -metrics snapshot")
	flag.Parse()

	if *emitMetrics && !*online {
		fmt.Fprintln(os.Stderr, "ecost-sim: -metrics instruments the online scheduler; enabling -online")
		*online = true
	}

	wl, err := core.Scenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(2)
	}
	fmt.Printf("scenario %s %s\n%s\n\n", wl.Name, wl.ClassSignature(), wl.AppSignature())

	fmt.Fprintln(os.Stderr, "building environment...")
	env, err := experiments.NewEnv(experiments.FastOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(1)
	}

	if *online {
		var reg *metrics.Registry
		if *emitMetrics {
			reg = metrics.NewRegistry()
		}
		runOnline(env, wl, *nodes, *arrival, *seed, reg)
		if reg != nil {
			fmt.Println()
			snap := reg.Snapshot(*metricsVolatile)
			var werr error
			if *metricsJSON {
				werr = snap.WriteJSON(os.Stdout)
			} else {
				werr = snap.WriteText(os.Stdout)
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "ecost-sim:", werr)
				os.Exit(1)
			}
		}
		return
	}

	var pol core.Policy
	found := false
	for _, p := range core.Policies() {
		if p.String() == *policy {
			pol, found = p, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "ecost-sim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	runner := &core.PolicyRunner{Oracle: env.Oracle, DB: env.DB, Tuner: env.LkT, Profiler: env.Profiler}
	res, err := runner.Run(pol, wl, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(1)
	}
	ub, err := runner.Run(core.UB, wl, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("policy %v on %d node(s):\n", pol, *nodes)
	fmt.Printf("  makespan  %.0f s\n", res.Makespan)
	fmt.Printf("  energy    %.0f J\n", res.EnergyJ)
	fmt.Printf("  EDP       %.4g J·s\n", res.EDP)
	fmt.Printf("  vs UB     %.2fx (UB EDP %.4g)\n", res.EDP/ub.EDP, ub.EDP)
}

func runOnline(env *experiments.Env, wl core.Workload, nodes int, arrival float64, seed int64, reg *metrics.Registry) {
	eng := sim.NewEngine()
	model := mapreduce.NewModel(cluster.AtomC2758())
	var tuner core.STP = env.LkT
	if reg != nil {
		// The model here is private to the online run, so steady-state
		// telemetry stays scoped to it; the STP wrapper adds prediction
		// counters and the predicted-vs-realized EDP error.
		model.Metrics = reg
		tuner = core.NewMeteredSTP(env.LkT, model, reg)
	}
	sched, err := core.NewOnlineScheduler(eng, model, env.DB, tuner, env.Profiler, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(1)
	}
	sched.SetMetrics(reg)
	rng := sim.NewRNG(seed)
	at := 0.0
	arrivals := make([]trace.Arrival, 0, len(wl.Jobs))
	for _, j := range wl.Jobs {
		arrivals = append(arrivals, trace.Arrival{At: at, App: j.App, SizeGB: j.SizeGB})
		sched.Submit(j.App, j.SizeGB, at)
		if arrival > 0 {
			at += rng.Exp(arrival)
		}
	}
	trace.Record(arrivals, reg)
	makespan, energy, err := sched.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("online ECoST on %d node(s), mean inter-arrival %.0fs:\n", nodes, arrival)
	fmt.Printf("  makespan %.0f s, energy %.0f J, EDP %.4g J·s\n\n", makespan, energy, energy*makespan)
	fmt.Printf("%-4s %-5s %-6s %-5s %9s %9s %9s %5s %s\n",
		"id", "app", "class", "size", "submit", "start", "finish", "node", "config")
	for _, c := range sched.Completed() {
		fmt.Printf("%-4d %-5s %-6v %4.0fG %9.0f %9.0f %9.0f %5d %v\n",
			c.ID, c.App, c.Class, c.SizeGB, c.Submitted, c.Started, c.Finished, c.Node, c.Cfg)
	}
}

package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"ecost/internal/audit"
	"ecost/internal/flight"
	"ecost/internal/metrics"
	"ecost/internal/tracing"
)

// serveSources bundles the live observability surfaces the -serve mux
// reads at request time. Every slice holds one entry per shard (one
// entry total for the unsharded scheduler); any entry — or the flight
// recorder — may be nil when the flag combination didn't enable it,
// and its endpoints then answer 503 with a hint instead of panicking.
type serveSources struct {
	regs     []*metrics.Registry
	trs      []*tracing.Tracer
	auds     []*audit.Log
	qo       audit.Oracle
	fr       *flight.Recorder
	volatile bool
}

func (s serveSources) shards() int { return len(s.regs) }

// shardSet assembles the selected shards' tracers into a ShardSet for
// the merged exporters. Selection order is shard order (a merged view
// always selects every shard), so the attach-time shard stamps match
// the spans' own.
func (s serveSources) shardSet(idx []int) *tracing.ShardSet {
	ts := tracing.NewShardSet()
	for _, i := range idx {
		ts.Attach(s.trs[i])
	}
	return ts
}

// shardParam resolves the optional ?shard=N selector: -1 (merged view)
// when absent, the shard index when valid, an error otherwise.
func (s serveSources) shardParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("shard")
	if raw == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 || n >= s.shards() {
		return 0, fmt.Errorf("shard=%q out of range (run has %d shard(s))", raw, s.shards())
	}
	return n, nil
}

// newServeMux builds the -serve observability mux. Every handler reads
// the live sources at request time, so a scrape during the run sees
// the simulation's progress and a scrape after it sees the final
// state. Multi-shard runs serve merged views by default (Prometheus
// families gain a shard label; /trace merges span sets into one
// document with a track group per shard and steal flow arrows; text
// exports concatenate "== shard N ==" sections) and per-shard views via
// ?shard=N — byte-identical to that shard's solo export; the flight
// recorder adds /shards, /epochs, /health, and /flight.
func newServeMux(s serveSources) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ecost-sim observability endpoints (?shard=N selects one shard):\n"+
			"  /metrics      Prometheus text exposition (multi-shard runs label families with shard=\"N\")\n"+
			"  /trace        Chrome trace_event JSON (load in Perfetto / chrome://tracing; merged across shards, one track group per shard)\n"+
			"  /timeline     deterministic text timeline of all spans\n"+
			"  /report       per-job and per-class EDP attribution report\n"+
			"  /decisions    per-decision audit log as JSON Lines\n"+
			"  /quality      decision-quality report (confusion, STP error, regret, drift)\n"+
			"  /shards       per-shard health rows as JSON (flight recorder)\n"+
			"  /epochs       barrier epoch wide-events as JSON Lines (flight recorder)\n"+
			"  /health       shard-health report: steal flow, fairness, queue slope, power skew\n"+
			"  /flight       anomaly-triggered flight dumps as JSON Lines\n"+
			"  /debug/pprof/ Go runtime profiles\n")
	})
	// pick resolves the ?shard selector against a per-shard source
	// slice: (selected indexes, true) or (nil, false) after replying.
	pick := func(w http.ResponseWriter, r *http.Request) ([]int, bool) {
		sel, err := s.shardParam(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return nil, false
		}
		if sel >= 0 {
			return []int{sel}, true
		}
		all := make([]int, s.shards())
		for i := range all {
			all[i] = i
		}
		return all, true
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := pick(w, r)
		if !ok {
			return
		}
		for _, i := range idx {
			if s.regs[i] == nil {
				http.Error(w, "metrics not enabled (run with -metrics or -serve)", http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var err error
		if len(idx) == 1 {
			// One shard selected (or an unsharded run): the classic
			// unlabeled exposition.
			err = s.regs[idx[0]].Snapshot(s.volatile).WritePrometheus(w)
		} else {
			snaps := make([]metrics.Snapshot, len(idx))
			for j, i := range idx {
				snaps[j] = s.regs[i].Snapshot(s.volatile)
			}
			err = metrics.WritePrometheusSharded(w, snaps)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	needTrace := func(w http.ResponseWriter, idx []int) bool {
		for _, i := range idx {
			if s.trs[i] == nil {
				http.Error(w, "tracing not enabled (run with -trace-out, -edp-report, or -serve)", http.StatusServiceUnavailable)
				return false
			}
		}
		return true
	}
	// sections streams one text export per selected shard, prefixed
	// with "== shard N ==" headers when more than one shard renders
	// (the same merged form -timeline-out writes).
	sections := func(w http.ResponseWriter, idx []int, write func(i int) error) {
		for _, i := range idx {
			if len(idx) > 1 {
				fmt.Fprintf(w, "== shard %d ==\n", i)
			}
			if err := write(i); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
	}
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := pick(w, r)
		if !ok || !needTrace(w, idx) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		var err error
		if len(idx) == 1 {
			// One shard selected (or an unsharded run): the solo export,
			// byte-identical to that shard's own -trace-out.
			err = s.trs[idx[0]].WriteChromeTrace(w)
		} else {
			err = s.shardSet(idx).WriteChromeTrace(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := pick(w, r)
		if !ok || !needTrace(w, idx) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var err error
		if len(idx) == 1 {
			err = s.trs[idx[0]].WriteTimeline(w)
		} else {
			// Per-shard "== shard N ==" sections plus the "== merged =="
			// global section — the same form -timeline-out writes.
			err = s.shardSet(idx).WriteTimeline(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := pick(w, r)
		if !ok || !needTrace(w, idx) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, i := range idx {
			if len(idx) > 1 {
				fmt.Fprintf(w, "== shard %d ==\n", i)
			}
			if err := s.trs[i].Report().WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		if len(idx) > 1 {
			fmt.Fprintf(w, "== merged ==\n")
			if err := s.shardSet(idx).Report().WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	needAudit := func(w http.ResponseWriter, idx []int) bool {
		for _, i := range idx {
			if !s.auds[i].Enabled() {
				http.Error(w, "decision audit not enabled (run with -quality-report or -serve)", http.StatusServiceUnavailable)
				return false
			}
		}
		return true
	}
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := pick(w, r)
		if !ok || !needAudit(w, idx) {
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		sections(w, idx, func(i int) error { return s.auds[i].WriteJSONL(w) })
	})
	mux.HandleFunc("/quality", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := pick(w, r)
		if !ok || !needAudit(w, idx) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		sections(w, idx, func(i int) error { return s.auds[i].Quality(s.qo).WriteText(w) })
	})
	needFlight := func(w http.ResponseWriter) bool {
		if s.fr == nil {
			http.Error(w, "flight recorder not enabled (run with -shards 2+ and -serve, -flight-out, or -health-report)", http.StatusServiceUnavailable)
			return false
		}
		return true
	}
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		if !needFlight(w) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := s.fr.WriteShards(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/epochs", func(w http.ResponseWriter, r *http.Request) {
		if !needFlight(w) {
			return
		}
		sel, err := s.shardParam(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		if err := s.fr.WriteEpochs(w, sel); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		if !needFlight(w) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.fr.Health().WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		if !needFlight(w) {
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		if err := s.fr.WriteDumps(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// net/http/pprof registers on http.DefaultServeMux in its init; on a
	// private mux the handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

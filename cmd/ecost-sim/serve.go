package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"ecost/internal/audit"
	"ecost/internal/metrics"
	"ecost/internal/tracing"
)

// newServeMux builds the -serve observability mux. Every handler reads
// the live registry/tracer/audit log at request time, so a scrape
// during the run sees the simulation's progress and a scrape after it
// sees the final state. Any source may be nil (the flag combination
// didn't enable it); its endpoints then answer 503 with a hint instead
// of panicking.
func newServeMux(reg *metrics.Registry, tr *tracing.Tracer, aud *audit.Log, qo audit.Oracle, volatile bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ecost-sim observability endpoints:\n"+
			"  /metrics      Prometheus text exposition of the run's metrics\n"+
			"  /trace        Chrome trace_event JSON (load in Perfetto / chrome://tracing)\n"+
			"  /timeline     deterministic text timeline of all spans\n"+
			"  /report       per-job and per-class EDP attribution report\n"+
			"  /decisions    per-decision audit log as JSON Lines\n"+
			"  /quality      decision-quality report (confusion, STP error, regret, drift)\n"+
			"  /debug/pprof/ Go runtime profiles\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "metrics not enabled (run with -metrics or -serve)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot(volatile).WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	needTrace := func(w http.ResponseWriter) bool {
		if tr == nil {
			http.Error(w, "tracing not enabled (run with -trace-out, -edp-report, or -serve)", http.StatusServiceUnavailable)
			return false
		}
		return true
	}
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if !needTrace(w) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if !needTrace(w) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := tr.WriteTimeline(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if !needTrace(w) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := tr.Report().WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	needAudit := func(w http.ResponseWriter) bool {
		if !aud.Enabled() {
			http.Error(w, "decision audit not enabled (run with -quality-report or -serve)", http.StatusServiceUnavailable)
			return false
		}
		return true
	}
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		if !needAudit(w) {
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		if err := aud.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/quality", func(w http.ResponseWriter, r *http.Request) {
		if !needAudit(w) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := aud.Quality(qo).WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// net/http/pprof registers on http.DefaultServeMux in its init; on a
	// private mux the handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"

	"ecost/internal/audit"
	"ecost/internal/cliutil"
	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/flight"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/trace"
	"ecost/internal/tracing"
)

// shardedOut selects which observability artifacts the sharded runner
// produces. Every export is per shard (each shard owns its registry,
// tracer, and audit log — they are written concurrently during epochs),
// printed or written as "== shard N ==" sections in shard order;
// traceOut and the timeline/EDP surfaces additionally render the
// deterministic merged view (one Chrome track group per shard, steal
// flow arrows, a "== merged ==" section). serveAddr exposes merged +
// ?shard=N views over HTTP, and flightOut/healthReport enable the
// barrier flight recorder.
type shardedOut struct {
	metrics         bool
	metricsJSON     bool
	metricsVolatile bool
	traceOut        string
	timelineOut     string
	edpReport       bool
	qualityReport   bool
	serveAddr       string
	flightOut       string
	healthReport    bool
}

// runOnlineSharded drives the arrival stream through the sharded
// control plane: per-shard schedulers over disjoint node slices,
// hash-routed submissions, and (with -steal) deterministic work
// stealing at event barriers. Output mirrors runOnline, plus a
// shards/steals line and per-shard observability sections.
func runOnlineSharded(env *experiments.Env, nodes, shards int, steal bool, arrivals []trace.Arrival, header string, perJobTable bool, out shardedOut) {
	model := mapreduce.NewModel(cluster.AtomC2758())
	serving := out.serveAddr != ""
	regs := make([]*metrics.Registry, shards)
	if out.metrics || serving {
		for i := range regs {
			regs[i] = metrics.NewRegistry()
		}
	}
	next := 0
	newTuner := func() core.STP {
		reg := regs[next]
		next++
		return core.NewMemoSTP(env.LkT, reg)
	}
	sched, err := core.NewShardedScheduler(model, env.DB, env.Profiler, newTuner, nodes,
		core.ShardedConfig{Shards: shards, Steal: steal})
	if err != nil {
		cliutil.Fatalf("building sharded scheduler failed", "err", err)
	}
	trs := make([]*tracing.Tracer, shards)
	auds := make([]*audit.Log, shards)
	for i := 0; i < shards; i++ {
		sh := sched.Shard(i)
		if regs[i] != nil {
			sh.SetMetrics(regs[i])
		}
		if out.qualityReport || serving {
			auds[i] = audit.NewLog(audit.DriftConfig{})
			sh.SetAudit(auds[i])
		}
	}
	var ts *tracing.ShardSet
	if out.traceOut != "" || out.timelineOut != "" || out.edpReport || serving {
		ts = tracing.NewShardSet()
		sched.SetTracer(ts)
		for i := range trs {
			trs[i] = ts.Tracer(i)
		}
	}
	var fr *flight.Recorder
	if out.flightOut != "" || out.healthReport || serving {
		fr = flight.New(flight.Config{Shards: shards, ShardNodes: sched.ShardNodes()})
		sched.SetFlight(fr)
	}
	qualityOracle := core.NewAuditOracle(env.Oracle)
	var srv *http.Server
	if serving {
		ln, err := net.Listen("tcp", out.serveAddr)
		if err != nil {
			cliutil.Fatalf("-serve listen failed", "err", err)
		}
		srv = &http.Server{Handler: newServeMux(serveSources{
			regs:     regs,
			trs:      trs,
			auds:     auds,
			qo:       qualityOracle,
			fr:       fr,
			volatile: out.metricsVolatile,
		})}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				slog.Error("observability server failed", "err", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving observability endpoints on http://%s/\n", ln.Addr())
	}
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	makespan, energy, err := sched.Run()
	if err != nil {
		cliutil.Fatalf("sharded online run failed", "err", err)
	}
	fmt.Println(header)
	fmt.Printf("  makespan %.0f s, energy %.0f J, EDP %.4g J·s\n", makespan, energy, energy*makespan)
	fmt.Printf("  %d shard(s), %d steal(s)\n", sched.Shards(), sched.Steals())
	bs := sched.BarrierStats()
	fmt.Printf("  %d exact barrier(s), %d free window(s), %d event(s) elided (%.1f%%)\n\n",
		bs.Barriers, bs.Windows, bs.WindowEvents, 100*bs.ElidedRatio())
	done := sched.Completed()
	if !perJobTable {
		fmt.Printf("%d jobs completed\n", len(done))
		qs := experiments.StreamStats(done, nodes, makespan)
		fmt.Printf("  utilization        %.3f\n", qs.Utilization)
		fmt.Printf("  queue length       mean %.2f, p95 %.0f, max %d\n", qs.MeanQueueLen, qs.P95QueueLen, qs.MaxQueueLen)
		fmt.Printf("  wait p50/p95/p99   %.1f / %.1f / %.1f s\n", qs.WaitP50, qs.WaitP95, qs.WaitP99)
		fmt.Printf("  sojourn p50/p95/p99 %.1f / %.1f / %.1f s\n", qs.SojournP50, qs.SojournP95, qs.SojournP99)
	} else {
		fmt.Printf("%-4s %-5s %-6s %-5s %9s %9s %9s %5s %s\n",
			"id", "app", "class", "size", "submit", "start", "finish", "node", "config")
		for _, c := range done {
			fmt.Printf("%-4d %-5s %-6v %4.0fG %9.0f %9.0f %9.0f %5d %v\n",
				c.ID, c.App, c.Class, c.SizeGB, c.Submitted, c.Started, c.Finished, c.Node, c.Cfg)
		}
	}

	if out.traceOut != "" {
		if err := writeArtifact(out.traceOut, ts.WriteChromeTrace); err != nil {
			cliutil.Fatalf("writing -trace-out failed", "err", err)
		}
		slog.Info("wrote merged Chrome trace", "path", out.traceOut, "shards", shards)
	}
	if out.timelineOut != "" {
		// Per-shard "== shard N ==" sections plus the "== merged =="
		// global section in canonical merged order.
		if err := writeArtifact(out.timelineOut, ts.WriteTimeline); err != nil {
			cliutil.Fatalf("writing -timeline-out failed", "err", err)
		}
	}
	if out.edpReport {
		for i, tr := range trs {
			fmt.Printf("\n== shard %d ==\n", i)
			if err := tr.Report().WriteText(os.Stdout); err != nil {
				cliutil.Fatalf("writing -edp-report failed", "err", err)
			}
		}
		fmt.Printf("\n== merged ==\n")
		if err := ts.Report().WriteText(os.Stdout); err != nil {
			cliutil.Fatalf("writing -edp-report failed", "err", err)
		}
	}
	if out.qualityReport {
		for i, aud := range auds {
			fmt.Printf("\n== shard %d ==\n", i)
			if err := aud.Quality(qualityOracle).WriteText(os.Stdout); err != nil {
				cliutil.Fatalf("writing -quality-report failed", "err", err)
			}
		}
	}
	if out.metrics {
		for i, reg := range regs {
			fmt.Printf("\n== shard %d ==\n", i)
			snap := reg.Snapshot(out.metricsVolatile)
			var werr error
			if out.metricsJSON {
				werr = snap.WriteJSON(os.Stdout)
			} else {
				werr = snap.WriteText(os.Stdout)
			}
			if werr != nil {
				cliutil.Fatalf("writing -metrics snapshot failed", "err", werr)
			}
		}
	}
	if out.healthReport {
		fmt.Println()
		if err := fr.Health().WriteText(os.Stdout); err != nil {
			cliutil.Fatalf("writing -health-report failed", "err", err)
		}
	}
	if out.flightOut != "" {
		if err := writeArtifact(out.flightOut, fr.WriteDumps); err != nil {
			cliutil.Fatalf("writing -flight-out failed", "err", err)
		}
		slog.Info("wrote flight-recorder dumps", "path", out.flightOut, "dumps", len(fr.Dumps()))
	}
	if srv != nil {
		fmt.Fprintln(os.Stderr, "run finished; endpoints stay up — interrupt (Ctrl-C) to exit")
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		<-ctx.Done()
		stop()
		srv.Close()
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/flight"
	"ecost/internal/metrics"
	"ecost/internal/tracing"
)

// serveFixture builds a mux over a small hand-made registry and tracer,
// avoiding the expensive environment build.
func serveFixture(t *testing.T) *httptest.Server {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("sched.submitted").Add(3)
	reg.Gauge("power.energy_j.total").Set(1234.5)
	h := reg.Histogram("sched.wait_s", metrics.ExpBuckets(16, 2, 8))
	h.Observe(12)
	h.Observe(40)

	now := 0.0
	tr := tracing.New(func() float64 { return now })
	job := tr.Record(tracing.KindJob, "job 0 wc", nil, 0, 100,
		tracing.Attrs{Job: 0, Node: 0, App: "wc", Class: "CPU", SizeGB: 5})
	run := tr.Record(tracing.KindRun, "run wc", job, 10, 100,
		tracing.Attrs{Job: 0, Node: 0, App: "wc", Class: "CPU", SizeGB: 5, Config: "m4f2.4"})
	run.SetEnergy(900)
	node := tr.Record(tracing.KindNode, "solo", nil, 0, 100, tracing.Attrs{Job: -1, Node: 0})
	node.SetEnergy(1100)

	aud := audit.NewLog(audit.DriftConfig{})
	aud.Submit(0, "wc", 5, "C", "C", 0)
	aud.Place(0, 0, 10, audit.BranchReserve, -1)
	aud.Tune(0, "LkT", "m4f2.4", audit.TuneSolo, audit.Expectation{EDP: 5000, TimeS: 90, PowerW: 10})
	aud.AddEnergy(0, 900)
	aud.Complete(0, 100)

	srv := httptest.NewServer(newServeMux(serveSources{
		regs: []*metrics.Registry{reg},
		trs:  []*tracing.Tracer{tr},
		auds: []*audit.Log{aud},
	}))
	t.Cleanup(srv.Close)
	return srv
}

// serveShardedFixture builds a mux over two hand-made per-shard
// registries and a flight recorder fed one synthetic barrier epoch.
func serveShardedFixture(t *testing.T) *httptest.Server {
	t.Helper()
	reg0 := metrics.NewRegistry()
	reg0.Counter("sched.submitted").Add(3)
	reg1 := metrics.NewRegistry()
	reg1.Counter("sched.submitted").Add(5)
	fr := flight.New(flight.Config{Shards: 2, ShardNodes: []int{2, 2}})
	fr.Steal(1, 0)
	fr.RecordEpoch(0, 10, []flight.ShardStat{
		{Queue: 2, Free: 1, Active: 1, EnergyJ: 50},
		{Queue: 1, Free: 2, EnergyJ: 30},
	})
	srv := httptest.NewServer(newServeMux(serveSources{
		regs: []*metrics.Registry{reg0, reg1},
		trs:  []*tracing.Tracer{nil, nil},
		auds: []*audit.Log{nil, nil},
		fr:   fr,
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsEndpoint(t *testing.T) {
	srv := serveFixture(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", code, body)
	}
	for _, want := range []string{
		"# TYPE ecost_sched_submitted counter",
		"ecost_sched_submitted 3",
		"# TYPE ecost_power_energy_j_total gauge",
		"# TYPE ecost_sched_wait_s summary",
		"ecost_sched_wait_s_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestServeTraceEndpoint(t *testing.T) {
	srv := serveFixture(t)
	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	complete := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("/trace has no complete events")
	}
}

func TestServeReportAndTimeline(t *testing.T) {
	srv := serveFixture(t)
	if code, body := get(t, srv.URL+"/report"); code != http.StatusOK || !strings.Contains(body, "wc") {
		t.Errorf("/report status %d body:\n%s", code, body)
	}
	if code, body := get(t, srv.URL+"/timeline"); code != http.StatusOK || !strings.Contains(body, "run wc") {
		t.Errorf("/timeline status %d body:\n%s", code, body)
	}
	if code, body := get(t, srv.URL+"/"); code != http.StatusOK || !strings.Contains(body, "/debug/pprof/") {
		t.Errorf("index status %d body:\n%s", code, body)
	}
	if code, _ := get(t, srv.URL+"/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

// TestServePprofProfile is the acceptance check that the CPU profile
// endpoint returns a non-empty pprof payload.
func TestServePprofProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profile endpoint samples for a wall-clock second")
	}
	srv := serveFixture(t)
	code, body := get(t, srv.URL+"/debug/pprof/profile?seconds=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/profile status %d: %s", code, body)
	}
	if len(body) == 0 {
		t.Fatal("/debug/pprof/profile returned an empty body")
	}
	if code, body := get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/ index status %d, %d bytes", code, len(body))
	}
}

// TestServeDecisionsAndQuality covers the audit endpoints: /decisions
// streams the log as JSON Lines, /quality renders the decision-quality
// report (with empty oracle sections — the fixture passes no oracle).
func TestServeDecisionsAndQuality(t *testing.T) {
	srv := serveFixture(t)
	code, body := get(t, srv.URL+"/decisions")
	if code != http.StatusOK {
		t.Fatalf("/decisions status %d: %s", code, body)
	}
	var dec struct {
		Job    int    `json:"job"`
		App    string `json:"app"`
		Branch string `json:"branch"`
		Done   bool   `json:"done"`
	}
	line := strings.TrimSpace(body)
	if err := json.Unmarshal([]byte(line), &dec); err != nil {
		t.Fatalf("/decisions line is not JSON: %v\n%s", err, line)
	}
	if dec.Job != 0 || dec.App != "wc" || dec.Branch != "reserve" || !dec.Done {
		t.Errorf("/decisions record mismatch: %+v", dec)
	}

	code, body = get(t, srv.URL+"/quality")
	if code != http.StatusOK {
		t.Fatalf("/quality status %d: %s", code, body)
	}
	for _, want := range []string{"decision quality:", "classifier confusion", "drift (CUSUM"} {
		if !strings.Contains(body, want) {
			t.Errorf("/quality missing %q in:\n%s", want, body)
		}
	}
}

// TestServeDisabledSources checks the 503 hints when a source is off.
func TestServeDisabledSources(t *testing.T) {
	srv := httptest.NewServer(newServeMux(serveSources{
		regs: []*metrics.Registry{nil},
		trs:  []*tracing.Tracer{nil},
		auds: []*audit.Log{nil},
	}))
	defer srv.Close()
	for _, path := range []string{
		"/metrics", "/trace", "/timeline", "/report", "/decisions", "/quality",
		"/shards", "/epochs", "/health", "/flight",
	} {
		if code, _ := get(t, srv.URL+path); code != http.StatusServiceUnavailable {
			t.Errorf("%s with nil sources: status %d, want 503", path, code)
		}
	}
}

// TestServeSharded covers the multi-shard mux: merged shard-labeled
// /metrics, per-shard selection via ?shard=N, range validation, and
// the flight-recorder endpoints.
func TestServeSharded(t *testing.T) {
	srv := serveShardedFixture(t)

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", code, body)
	}
	for _, want := range []string{
		`ecost_sched_submitted{shard="0"} 3`,
		`ecost_sched_submitted{shard="1"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// One selected shard renders the classic unlabeled exposition.
	code, body = get(t, srv.URL+"/metrics?shard=1")
	if code != http.StatusOK || !strings.Contains(body, "ecost_sched_submitted 5") {
		t.Errorf("/metrics?shard=1 status %d body:\n%s", code, body)
	}
	if strings.Contains(body, `shard="`) {
		t.Errorf("/metrics?shard=1 still labeled:\n%s", body)
	}
	if code, body := get(t, srv.URL+"/metrics?shard=9"); code != http.StatusBadRequest {
		t.Errorf("/metrics?shard=9 status %d body:\n%s", code, body)
	}
	if code, body := get(t, srv.URL+"/epochs?shard=x"); code != http.StatusBadRequest {
		t.Errorf("/epochs?shard=x status %d body:\n%s", code, body)
	}

	code, body = get(t, srv.URL+"/health")
	if code != http.StatusOK || !strings.Contains(body, "# shard health") {
		t.Fatalf("/health status %d body:\n%s", code, body)
	}
	if !strings.Contains(body, "steals") {
		t.Errorf("/health missing steal summary:\n%s", body)
	}

	code, body = get(t, srv.URL+"/epochs")
	if code != http.StatusOK {
		t.Fatalf("/epochs status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/epochs has %d records, want one per shard:\n%s", len(lines), body)
	}
	var rec struct {
		Epoch int `json:"epoch"`
		Shard int `json:"shard"`
		Queue int `json:"queue"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("/epochs line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Epoch != 0 || rec.Shard != 0 || rec.Queue != 2 {
		t.Errorf("/epochs record mismatch: %+v", rec)
	}
	code, body = get(t, srv.URL+"/epochs?shard=1")
	if code != http.StatusOK || len(strings.Split(strings.TrimSpace(body), "\n")) != 1 {
		t.Errorf("/epochs?shard=1 status %d body:\n%s", code, body)
	}

	code, body = get(t, srv.URL+"/shards")
	if code != http.StatusOK {
		t.Fatalf("/shards status %d: %s", code, body)
	}
	var rows []struct {
		Shard     int   `json:"shard"`
		StealsIn  int64 `json:"steals_in"`
		StealsOut int64 `json:"steals_out"`
	}
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("/shards is not valid JSON: %v\n%s", err, body)
	}
	if len(rows) != 2 || rows[0].StealsIn != 1 || rows[1].StealsOut != 1 {
		t.Errorf("/shards rows mismatch: %+v", rows)
	}

	// No anomaly fired, so the flight dump stream is empty but served.
	if code, body := get(t, srv.URL+"/flight"); code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("/flight status %d body:\n%s", code, body)
	}
}

// TestServeShardedTrace covers the sharded trace endpoints: the merged
// /trace and /timeline views (flow-linked steal pair, per-shard
// sections), and ?shard=N selection byte-identical to the shard
// tracer's own solo export.
func TestServeShardedTrace(t *testing.T) {
	ts := tracing.NewShardSet()
	trs := make([]*tracing.Tracer, 2)
	for i := range trs {
		now := 0.0
		trs[i] = tracing.New(func() float64 { return now })
		ts.Attach(trs[i])
	}
	trs[0].Record(tracing.KindNode, "solo", nil, 0, 100, tracing.Attrs{Job: -1, Node: 0}).SetEnergy(60)
	trs[1].Record(tracing.KindNode, "solo", nil, 0, 100, tracing.Attrs{Job: -1, Node: 1}).SetEnergy(40)
	trs[0].Record(tracing.KindRun, "run wc", nil, 10, 90,
		tracing.Attrs{Job: 0, Node: 0, App: "wc", Class: "CPU", SizeGB: 5, Config: "m4f2.4"}).SetEnergy(60)
	trs[0].Record(tracing.KindStealOut, "steal_out", nil, 20, 20,
		tracing.Attrs{Job: 1, Node: -1, App: "wc", Detail: "to=shard1", Link: 1})
	trs[1].Record(tracing.KindStealIn, "steal_in", nil, 20, 20,
		tracing.Attrs{Job: 1, Node: -1, App: "wc", Detail: "from=shard0", Link: 1})

	srv := httptest.NewServer(newServeMux(serveSources{
		regs: []*metrics.Registry{nil, nil},
		trs:  trs,
		auds: []*audit.Log{nil, nil},
	}))
	t.Cleanup(srv.Close)

	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("merged /trace status %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID int    `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("merged /trace is not valid JSON: %v", err)
	}
	var flowS, flowF int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if flowS != 1 || flowF != 1 {
		t.Fatalf("merged /trace has %d flow starts and %d finishes, want 1/1", flowS, flowF)
	}

	// ?shard=N is byte-identical to the shard tracer's solo export.
	for i, tr := range trs {
		var want strings.Builder
		if err := tr.WriteChromeTrace(&want); err != nil {
			t.Fatal(err)
		}
		code, body := get(t, srv.URL+fmt.Sprintf("/trace?shard=%d", i))
		if code != http.StatusOK || body != want.String() {
			t.Errorf("/trace?shard=%d diverges from solo export (status %d):\n%s\nvs\n%s", i, code, body, want.String())
		}
		want.Reset()
		if err := tr.WriteTimeline(&want); err != nil {
			t.Fatal(err)
		}
		code, body = get(t, srv.URL+fmt.Sprintf("/timeline?shard=%d", i))
		if code != http.StatusOK || body != want.String() {
			t.Errorf("/timeline?shard=%d diverges from solo export (status %d):\n%s\nvs\n%s", i, code, body, want.String())
		}
	}

	code, body = get(t, srv.URL+"/timeline")
	if code != http.StatusOK {
		t.Fatalf("merged /timeline status %d: %s", code, body)
	}
	for _, want := range []string{"== shard 0 ==", "== shard 1 ==", "== merged ==", "steal_out", "link=1"} {
		if !strings.Contains(body, want) {
			t.Errorf("merged /timeline missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv.URL+"/report")
	if code != http.StatusOK {
		t.Fatalf("merged /report status %d: %s", code, body)
	}
	for _, want := range []string{"== shard 0 ==", "== merged ==", "# ecost EDP attribution"} {
		if !strings.Contains(body, want) {
			t.Errorf("merged /report missing %q:\n%s", want, body)
		}
	}
	if code, body := get(t, srv.URL+"/trace?shard=5"); code != http.StatusBadRequest {
		t.Errorf("/trace?shard=5 status %d body:\n%s", code, body)
	}
}

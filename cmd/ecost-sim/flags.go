package main

// runFlags is the parsed flag set that participates in cross-flag
// validation. Online carries the post-implication value (-metrics and
// gen: scenarios silently enable -online before validation runs);
// ScenarioGen is whether -scenario named a gen: spec rather than a
// WS workload.
type runFlags struct {
	Online          bool
	Nodes           int
	Jobs            int
	Arrival         float64
	ScenarioGen     bool
	Arrivals        string
	TraceRecord     string
	TraceReplay     string
	Metrics         bool
	MetricsJSON     bool
	MetricsVolatile bool
	TraceOut        string
	TimelineOut     string
	EDPReport       bool
	QualityReport   bool
	ServeAddr       string
	FlightOut       string
	HealthReport    bool

	// Shards is the -shards value and ShardsSet whether the user passed
	// the flag at all (the default 1 is the unsharded control plane and
	// needs no -online; an explicit -shards is an online request).
	Shards    int
	ShardsSet bool
	Steal     bool
}

// onlineOnly lists the flags that are meaningless without the online
// scheduler, in the order contradictions are reported.
func (f runFlags) onlineOnly() []struct {
	name string
	set  bool
} {
	return []struct {
		name string
		set  bool
	}{
		{"-jobs", f.Jobs > 0},
		{"-trace-record", f.TraceRecord != ""},
		{"-trace-replay", f.TraceReplay != ""},
		{"-trace-out", f.TraceOut != ""},
		{"-timeline-out", f.TimelineOut != ""},
		{"-edp-report", f.EDPReport},
		{"-quality-report", f.QualityReport},
		{"-serve", f.ServeAddr != ""},
		{"-shards", f.ShardsSet},
		{"-steal", f.Steal},
		{"-flight-out", f.FlightOut != ""},
		{"-health-report", f.HealthReport},
	}
}

// contradiction returns the usage message for the first inconsistent
// flag combination, or "" when the set is coherent. Kept as a pure
// function so every rejection path is table-testable without spawning
// the binary (the caller exits with cliutil.ExitUsage on a non-empty
// result).
func (f runFlags) contradiction() string {
	if f.Nodes < 1 {
		return "-nodes must be a positive cluster size"
	}
	if f.Jobs < 0 {
		return "-jobs cannot be negative; 0 means the scenario as-is"
	}
	if (f.MetricsJSON || f.MetricsVolatile) && !f.Metrics {
		return "-metrics-json and -metrics-volatile shape the -metrics snapshot; pass -metrics as well"
	}
	if f.ShardsSet && f.Shards < 1 {
		return "-shards must be at least 1 (1 = the single unsharded control plane)"
	}
	if f.Shards > f.Nodes {
		return "-shards cannot exceed -nodes; every shard owns at least one node"
	}
	if f.Steal && f.Shards < 2 {
		return "-steal migrates queued jobs between shards; pass -shards 2 or more"
	}
	if f.FlightOut != "" && f.Shards < 2 {
		return "-flight-out records the sharded control plane's epoch barriers; pass -shards 2 or more"
	}
	if f.HealthReport && f.Shards < 2 {
		return "-health-report aggregates per-shard barrier telemetry; pass -shards 2 or more"
	}
	if f.Shards > 1 && f.TraceOut != "" {
		// -serve works across shards (merged + ?shard=N endpoints), but
		// a Chrome trace is one stream per file; the sharded control
		// plane exports per-shard spans.
		return "-trace-out writes one merged Chrome trace; the sharded control plane exports per-shard spans — use -timeline-out, or -shards 1"
	}
	if f.TraceReplay != "" {
		// A replayed trace IS the stream; every other stream-shaping
		// flag contradicts it.
		switch {
		case f.ScenarioGen:
			return "-trace-replay plays a recorded stream; drop the gen: -scenario"
		case f.TraceRecord != "":
			return "-trace-replay already has the recording; drop -trace-record"
		case f.Jobs > 0:
			return "-jobs shapes a generated stream; it cannot resize a -trace-replay recording"
		case f.Arrival > 0 || f.Arrivals != "":
			return "arrival times come from the -trace-replay recording; drop -arrival/-arrivals"
		}
	}
	if f.ScenarioGen {
		if f.Jobs > 0 {
			return "-jobs duplicates the jobs= clause of a gen: -scenario"
		}
		if f.Arrival > 0 {
			return "-arrival shapes workload streams; retune a gen: -scenario with -arrivals instead"
		}
	} else if f.Arrivals != "" {
		return "-arrivals retunes a gen: -scenario; use -arrival for workload streams"
	}
	if !f.Online {
		for _, c := range f.onlineOnly() {
			if c.set {
				return c.name + " requires the online scheduler; pass -online"
			}
		}
	}
	return ""
}

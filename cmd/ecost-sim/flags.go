package main

import (
	"fmt"
	"os"
	"path/filepath"
)

// runFlags is the parsed flag set that participates in cross-flag
// validation. Online carries the post-implication value (-metrics and
// gen: scenarios silently enable -online before validation runs);
// ScenarioGen is whether -scenario named a gen: spec rather than a
// WS workload.
type runFlags struct {
	Online          bool
	Nodes           int
	Jobs            int
	Arrival         float64
	ScenarioGen     bool
	Arrivals        string
	TraceRecord     string
	TraceReplay     string
	Metrics         bool
	MetricsJSON     bool
	MetricsVolatile bool
	TraceOut        string
	TimelineOut     string
	EDPReport       bool
	QualityReport   bool
	ServeAddr       string
	FlightOut       string
	HealthReport    bool

	// Shards is the -shards value and ShardsSet whether the user passed
	// the flag at all (the default 1 is the unsharded control plane and
	// needs no -online; an explicit -shards is an online request).
	Shards    int
	ShardsSet bool
	Steal     bool
}

// onlineOnly lists the flags that are meaningless without the online
// scheduler, in the order contradictions are reported.
func (f runFlags) onlineOnly() []struct {
	name string
	set  bool
} {
	return []struct {
		name string
		set  bool
	}{
		{"-jobs", f.Jobs > 0},
		{"-trace-record", f.TraceRecord != ""},
		{"-trace-replay", f.TraceReplay != ""},
		{"-trace-out", f.TraceOut != ""},
		{"-timeline-out", f.TimelineOut != ""},
		{"-edp-report", f.EDPReport},
		{"-quality-report", f.QualityReport},
		{"-serve", f.ServeAddr != ""},
		{"-shards", f.ShardsSet},
		{"-steal", f.Steal},
		{"-flight-out", f.FlightOut != ""},
		{"-health-report", f.HealthReport},
	}
}

// contradiction returns the usage message for the first inconsistent
// flag combination, or "" when the set is coherent. Kept as a pure
// function so every rejection path is table-testable without spawning
// the binary (the caller exits with cliutil.ExitUsage on a non-empty
// result).
func (f runFlags) contradiction() string {
	if f.Nodes < 1 {
		return "-nodes must be a positive cluster size"
	}
	if f.Jobs < 0 {
		return "-jobs cannot be negative; 0 means the scenario as-is"
	}
	if (f.MetricsJSON || f.MetricsVolatile) && !f.Metrics {
		return "-metrics-json and -metrics-volatile shape the -metrics snapshot; pass -metrics as well"
	}
	if f.ShardsSet && f.Shards < 1 {
		return "-shards must be at least 1 (1 = the single unsharded control plane)"
	}
	if f.Shards > f.Nodes {
		return "-shards cannot exceed -nodes; every shard owns at least one node"
	}
	if f.Steal && f.Shards < 2 {
		return "-steal migrates queued jobs between shards; pass -shards 2 or more"
	}
	if f.FlightOut != "" && f.Shards < 2 {
		return "-flight-out records the sharded control plane's epoch barriers; pass -shards 2 or more"
	}
	if f.HealthReport && f.Shards < 2 {
		return "-health-report aggregates per-shard barrier telemetry; pass -shards 2 or more"
	}
	if f.TraceReplay != "" {
		// A replayed trace IS the stream; every other stream-shaping
		// flag contradicts it.
		switch {
		case f.ScenarioGen:
			return "-trace-replay plays a recorded stream; drop the gen: -scenario"
		case f.TraceRecord != "":
			return "-trace-replay already has the recording; drop -trace-record"
		case f.Jobs > 0:
			return "-jobs shapes a generated stream; it cannot resize a -trace-replay recording"
		case f.Arrival > 0 || f.Arrivals != "":
			return "arrival times come from the -trace-replay recording; drop -arrival/-arrivals"
		}
	}
	if f.ScenarioGen {
		if f.Jobs > 0 {
			return "-jobs duplicates the jobs= clause of a gen: -scenario"
		}
		if f.Arrival > 0 {
			return "-arrival shapes workload streams; retune a gen: -scenario with -arrivals instead"
		}
	} else if f.Arrivals != "" {
		return "-arrivals retunes a gen: -scenario; use -arrival for workload streams"
	}
	if !f.Online {
		for _, c := range f.onlineOnly() {
			if c.set {
				return c.name + " requires the online scheduler; pass -online"
			}
		}
	}
	return ""
}

// outputPaths lists the flags that write a file at the end of the run,
// in the order unwritable targets are reported.
func (f runFlags) outputPaths() []struct {
	name string
	path string
} {
	return []struct {
		name string
		path string
	}{
		{"-flight-out", f.FlightOut},
		{"-trace-out", f.TraceOut},
		{"-timeline-out", f.TimelineOut},
	}
}

// unwritableOutput probes each set output flag's target directory and
// returns the usage message for the first one that cannot take a file,
// or "". Probing at flag-validation time fails fast with exit 2
// instead of erroring on the first dump after a long run.
func (f runFlags) unwritableOutput() string {
	for _, o := range f.outputPaths() {
		if o.path == "" {
			continue
		}
		if err := probeWritableDir(filepath.Dir(o.path)); err != nil {
			return fmt.Sprintf("%s %s: %v", o.name, o.path, err)
		}
	}
	return ""
}

// probeWritableDir verifies a file can be created in dir by creating
// and removing a temp file there — the only check that catches every
// failure mode (missing directory, not a directory, read-only mount,
// permissions) without racing the end-of-run write.
func probeWritableDir(dir string) error {
	st, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("target directory does not exist: %w", err)
	}
	if !st.IsDir() {
		return fmt.Errorf("target directory %s is not a directory", dir)
	}
	tmp, err := os.CreateTemp(dir, ".ecost-probe-*")
	if err != nil {
		return fmt.Errorf("target directory is not writable: %w", err)
	}
	tmp.Close()
	return os.Remove(tmp.Name())
}

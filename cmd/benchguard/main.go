// Command benchguard compares `go test -bench -benchmem` output
// against the guarded entries of BENCH_PERF.json and fails (exit 1)
// when a guarded benchmark regressed or went missing. It exists to
// keep the disabled-path costs honest: the observability subsystems
// (metrics, tracing, audit) promise a nil handle costs one inlined
// branch, and that promise silently rots without a gate.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkDisabled' -benchmem ./... | benchguard -out comparison.txt
//
// Only baseline entries marked "guard": true participate; the rest of
// BENCH_PERF.json is a historical record, not a gate. The allowed
// ceiling per benchmark is baseline ns/op + max(-tolerance percent,
// -abs-floor-ns): the absolute floor keeps sub-nanosecond baselines
// (where 25% is ~0.1 ns, i.e. timer noise) from flapping, while still
// catching the failure mode that matters — a disabled path picking up
// an allocation or a real branch, which costs whole nanoseconds.
// Allocations have no tolerance: a guarded benchmark may not allocate
// more than its baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ecost/internal/cliutil"
)

func main() {
	baseline := flag.String("baseline", "BENCH_PERF.json", "baseline file with guarded entries")
	in := flag.String("in", "-", "benchmark output to check (- reads stdin)")
	out := flag.String("out", "", "also write the comparison table to this file (uploaded as a CI artifact)")
	tol := flag.Float64("tolerance", 25, "allowed ns/op regression in percent of the baseline")
	floor := flag.Float64("abs-floor-ns", 1, "minimum absolute ns/op headroom, guards sub-ns baselines against timer noise")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	flag.Parse()

	if err := cliutil.SetupLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(cliutil.ExitUsage)
	}
	if *tol < 0 || *floor < 0 {
		cliutil.Usagef("-tolerance and -abs-floor-ns must be non-negative")
	}

	base, err := loadBaseline(*baseline)
	if err != nil {
		cliutil.Fatalf("loading baseline failed", "path", *baseline, "err", err)
	}
	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			cliutil.Fatalf("opening benchmark output failed", "err", err)
		}
		defer f.Close()
		src = f
	}
	got, err := parseBenchOutput(src)
	if err != nil {
		cliutil.Fatalf("parsing benchmark output failed", "err", err)
	}

	comps := compare(base, got, *tol, *floor)
	if len(comps) == 0 {
		cliutil.Fatalf("baseline has no guarded entries", "path", *baseline)
	}
	if err := writeComparison(os.Stdout, comps, *tol, *floor); err != nil {
		cliutil.Fatalf("writing comparison failed", "err", err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cliutil.Fatalf("creating -out failed", "err", err)
		}
		if err := writeComparison(f, comps, *tol, *floor); err != nil {
			f.Close()
			cliutil.Fatalf("writing -out failed", "err", err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatalf("closing -out failed", "err", err)
		}
	}
	for _, c := range comps {
		if c.Status != statusOK {
			os.Exit(1)
		}
	}
}

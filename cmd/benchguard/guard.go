package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// baselineEntry is one BENCH_PERF.json result. Only the fields the
// guard reads are decoded; entries without "guard": true are records,
// not gates.
type baselineEntry struct {
	Benchmark string  `json:"benchmark"`
	Package   string  `json:"package"`
	NsOp      float64 `json:"ns_op"`
	AllocsOp  int64   `json:"allocs_op"`
	Guard     bool    `json:"guard"`
}

type baselineFile struct {
	Schema  string          `json:"schema"`
	Results []baselineEntry `json:"results"`
}

func loadBaseline(path string) ([]baselineEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "ecost-bench-perf/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return f.Results, nil
}

// measured is one benchmark result line from `go test -bench -benchmem`.
type measured struct {
	NsOp     float64
	AllocsOp int64
}

// benchLineRe matches a result line. The -N GOMAXPROCS suffix is
// stripped so names join against the baseline; B/op and allocs/op are
// optional because -benchmem may be absent (then allocations are
// treated as unmeasured and only ns/op is gated). Custom ReportMetric
// columns (e.g. the throughput benchmarks' jobs/s) land between ns/op
// and B/op, so anything may separate them — requiring B/op to follow
// ns/op directly would leave exactly those benchmarks' alloc gates
// unmeasured.
var benchLineRe = regexp.MustCompile(`^(Benchmark[^\s-]+)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:.*?\s\d+ B/op\s+(\d+) allocs/op)?`)

func parseBenchOutput(r io.Reader) (map[string]measured, error) {
	got := map[string]measured{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLineRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		allocs := int64(-1)
		if m[3] != "" {
			allocs, err = strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		got[m[1]] = measured{NsOp: ns, AllocsOp: allocs}
	}
	return got, sc.Err()
}

const (
	statusOK        = "ok"
	statusRegressed = "REGRESSED"
	statusMissing   = "MISSING"
)

// comparison is one guarded benchmark's verdict.
type comparison struct {
	Benchmark  string
	Package    string
	BaseNs     float64
	LimitNs    float64
	GotNs      float64
	BaseAllocs int64
	GotAllocs  int64
	Status     string
}

// compare gates every guarded baseline entry against the measured
// results. The ns/op ceiling is baseline + max(tolPct%, absFloorNs);
// allocations must not exceed the baseline at all. A guarded entry
// with no measurement is itself a failure — deleting the benchmark
// must not silently disarm the guard.
func compare(base []baselineEntry, got map[string]measured, tolPct, absFloorNs float64) []comparison {
	var comps []comparison
	for _, b := range base {
		if !b.Guard {
			continue
		}
		limit := b.NsOp * (1 + tolPct/100)
		if limit < b.NsOp+absFloorNs {
			limit = b.NsOp + absFloorNs
		}
		c := comparison{
			Benchmark:  b.Benchmark,
			Package:    b.Package,
			BaseNs:     b.NsOp,
			LimitNs:    limit,
			BaseAllocs: b.AllocsOp,
			GotAllocs:  -1,
			Status:     statusMissing,
		}
		if m, ok := got[b.Benchmark]; ok {
			c.GotNs, c.GotAllocs = m.NsOp, m.AllocsOp
			c.Status = statusOK
			if m.NsOp > limit || (m.AllocsOp >= 0 && m.AllocsOp > b.AllocsOp) {
				c.Status = statusRegressed
			}
		}
		comps = append(comps, c)
	}
	return comps
}

// writeComparison renders the verdict table (the CI artifact).
func writeComparison(w io.Writer, comps []comparison, tolPct, absFloorNs float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "benchguard: %d guarded benchmark(s), tolerance %g%% (abs floor %g ns)\n\n",
		len(comps), tolPct, absFloorNs)
	fmt.Fprintf(bw, "%-28s %-18s %12s %12s %12s %8s %9s\n",
		"benchmark", "package", "base ns/op", "limit ns/op", "got ns/op", "allocs", "status")
	bad := 0
	for _, c := range comps {
		gotNs, allocs := "-", "-"
		if c.Status != statusMissing {
			gotNs = strconv.FormatFloat(c.GotNs, 'g', 4, 64)
			if c.GotAllocs >= 0 {
				allocs = fmt.Sprintf("%d/%d", c.GotAllocs, c.BaseAllocs)
			}
		}
		fmt.Fprintf(bw, "%-28s %-18s %12.4g %12.4g %12s %8s %9s\n",
			c.Benchmark, c.Package, c.BaseNs, c.LimitNs, gotNs, allocs, c.Status)
		if c.Status != statusOK {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(bw, "\n%d guarded benchmark(s) failed\n", bad)
	} else {
		fmt.Fprint(bw, "\nall guarded benchmarks within tolerance\n")
	}
	return bw.Flush()
}

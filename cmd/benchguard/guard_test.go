package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: ecost/internal/metrics
BenchmarkDisabledCounter   	1000000000	         0.3945 ns/op	       0 B/op	       0 allocs/op
BenchmarkDisabledHistogram-4 	1000000000	         0.3912 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem             	  500000	      2100 ns/op
BenchmarkOnlineShardedCluster-4   	       3	 150055457 ns/op	    266568 jobs/s	71938504 B/op	   60460 allocs/op
PASS
ok  	ecost/internal/metrics	0.878s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	if m := got["BenchmarkDisabledCounter"]; m.NsOp != 0.3945 || m.AllocsOp != 0 {
		t.Errorf("DisabledCounter = %+v", m)
	}
	// The -N GOMAXPROCS suffix is stripped.
	if m, ok := got["BenchmarkDisabledHistogram"]; !ok || m.NsOp != 0.3912 {
		t.Errorf("DisabledHistogram = %+v (ok=%v)", m, ok)
	}
	// Without -benchmem, allocations are unmeasured (-1), not zero.
	if m := got["BenchmarkNoMem"]; m.NsOp != 2100 || m.AllocsOp != -1 {
		t.Errorf("NoMem = %+v", m)
	}
	// A ReportMetric column (jobs/s) between ns/op and B/op must not
	// disarm the alloc gate.
	if m := got["BenchmarkOnlineShardedCluster"]; m.NsOp != 150055457 || m.AllocsOp != 60460 {
		t.Errorf("OnlineShardedCluster = %+v, want allocs parsed through the jobs/s column", m)
	}
}

func TestCompare(t *testing.T) {
	base := []baselineEntry{
		{Benchmark: "BenchmarkSubNs", NsOp: 0.37, AllocsOp: 0, Guard: true},
		{Benchmark: "BenchmarkBig", NsOp: 1000, AllocsOp: 2, Guard: true},
		{Benchmark: "BenchmarkGone", NsOp: 5, AllocsOp: 0, Guard: true},
		{Benchmark: "BenchmarkRecordOnly", NsOp: 1, AllocsOp: 0}, // not guarded
	}
	got := map[string]measured{
		// 0.46 ns is +24% of the sub-ns baseline but well inside the
		// 1 ns absolute floor; must pass.
		"BenchmarkSubNs":      {NsOp: 0.46, AllocsOp: 0},
		"BenchmarkBig":        {NsOp: 1249, AllocsOp: 2}, // within 25%
		"BenchmarkRecordOnly": {NsOp: 9999, AllocsOp: 50},
	}
	comps := compare(base, got, 25, 1)
	if len(comps) != 3 {
		t.Fatalf("compared %d entries, want the 3 guarded ones: %+v", len(comps), comps)
	}
	byName := map[string]comparison{}
	for _, c := range comps {
		byName[c.Benchmark] = c
	}
	if c := byName["BenchmarkSubNs"]; c.Status != statusOK || c.LimitNs != 1.37 {
		t.Errorf("SubNs = %+v, want ok with limit 1.37 (abs floor)", c)
	}
	if c := byName["BenchmarkBig"]; c.Status != statusOK || c.LimitNs != 1250 {
		t.Errorf("Big = %+v, want ok with limit 1250 (25%%)", c)
	}
	if c := byName["BenchmarkGone"]; c.Status != statusMissing {
		t.Errorf("Gone = %+v, want missing", c)
	}

	// ns/op over the limit regresses.
	got["BenchmarkBig"] = measured{NsOp: 1251, AllocsOp: 2}
	if c := findComp(t, compare(base, got, 25, 1), "BenchmarkBig"); c.Status != statusRegressed {
		t.Errorf("over-limit ns = %+v, want regressed", c)
	}
	// A new allocation regresses even when ns/op is fine.
	got["BenchmarkSubNs"] = measured{NsOp: 0.37, AllocsOp: 1}
	if c := findComp(t, compare(base, got, 25, 1), "BenchmarkSubNs"); c.Status != statusRegressed {
		t.Errorf("new alloc = %+v, want regressed", c)
	}
	// Unmeasured allocations (no -benchmem) gate only on ns/op.
	got["BenchmarkSubNs"] = measured{NsOp: 0.37, AllocsOp: -1}
	if c := findComp(t, compare(base, got, 25, 1), "BenchmarkSubNs"); c.Status != statusOK {
		t.Errorf("unmeasured allocs = %+v, want ok", c)
	}
}

func findComp(t *testing.T, comps []comparison, name string) comparison {
	t.Helper()
	for _, c := range comps {
		if c.Benchmark == name {
			return c
		}
	}
	t.Fatalf("no comparison for %s in %+v", name, comps)
	return comparison{}
}

func TestWriteComparison(t *testing.T) {
	comps := []comparison{
		{Benchmark: "BenchmarkA", Package: "internal/x", BaseNs: 0.37, LimitNs: 1.37, GotNs: 0.4, BaseAllocs: 0, GotAllocs: 0, Status: statusOK},
		{Benchmark: "BenchmarkB", Package: "internal/y", BaseNs: 5, LimitNs: 6.25, GotAllocs: -1, Status: statusMissing},
	}
	var buf bytes.Buffer
	if err := writeComparison(&buf, comps, 25, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BenchmarkA", "BenchmarkB", statusMissing, "1 guarded benchmark(s) failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}

// TestGuardedBaselineFile loads the repo's real BENCH_PERF.json: the
// schema must parse and the disabled-path benchmarks the CI job runs
// must all be guarded, so the workflow and the baseline cannot drift
// apart silently.
func TestGuardedBaselineFile(t *testing.T) {
	base, err := loadBaseline("../../BENCH_PERF.json")
	if err != nil {
		t.Fatal(err)
	}
	guarded := map[string]bool{}
	for _, b := range base {
		if !b.Guard {
			continue
		}
		guarded[b.Benchmark] = true
		// Disabled-path and instrumented-accrual guards promise zero
		// allocations; throughput guards (the large-cluster event loop)
		// carry a real alloc budget instead.
		if strings.HasPrefix(b.Benchmark, "BenchmarkDisabled") && b.AllocsOp != 0 {
			t.Errorf("%s is guarded with baseline allocs %d; disabled paths must be alloc-free", b.Benchmark, b.AllocsOp)
		}
	}
	for _, want := range []string{
		"BenchmarkDisabledCounter",
		"BenchmarkDisabledHistogram",
		"BenchmarkDisabledSpan",
		"BenchmarkDisabledAudit",
		"BenchmarkDisabledDepthSample",
		"BenchmarkDisabledOccupancyRoll",
		"BenchmarkAccrueEnergyTraced",
		"BenchmarkOnlineLargeCluster",
		"BenchmarkOnlineShardedCluster",
		"BenchmarkBarrierElision",
		"BenchmarkScenarioGen",
	} {
		if !guarded[want] {
			t.Errorf("BENCH_PERF.json does not guard %s", want)
		}
	}
	for _, b := range base {
		if b.Benchmark == "BenchmarkAccrueEnergyTraced" && b.AllocsOp != 0 {
			t.Errorf("the instrumented accrual path is guarded with baseline allocs %d; the zero-alloc contract is the point", b.AllocsOp)
		}
	}
}

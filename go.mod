module ecost

go 1.22

// Quickstart: the shortest path through the ECoST public surface.
//
// It builds the offline knowledge base (profile training apps → COLAO
// database → REPTree self-tuning models), then submits a small mixed
// batch of *unknown* applications to the online scheduler on a two-node
// microserver cluster and prints what ECoST decided: how each job was
// classified, whom it was co-located with, and which frequency / HDFS
// block size / mapper configuration it was given.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/mapreduce"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

func main() {
	fmt.Println("building ECoST knowledge base (training apps → database → models)...")
	env, err := experiments.NewEnv(experiments.FastOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A mixed batch of unknown applications: compute-, hybrid-, I/O- and
	// memory-bound, arriving 90 seconds apart.
	batch := []struct {
		app  string
		size float64
	}{
		{"svm", 5}, {"pr", 5}, {"km", 5}, {"nb", 1},
		{"cf", 5}, {"hmm", 10}, {"pr", 1}, {"nb", 5},
	}

	eng := sim.NewEngine()
	model := mapreduce.NewModel(cluster.AtomC2758())
	// The demo database is coarse (FastOptions), where the lookup table
	// is the most accurate tuner; a full-fidelity deployment would use
	// REPTree (see EXPERIMENTS.md).
	sched, err := core.NewOnlineScheduler(eng, model, env.DB, env.LkT, env.Profiler, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, j := range batch {
		app := workloads.MustByName(j.app)
		sched.Submit(app, j.size, float64(i)*90)
	}

	makespan, energy, err := sched.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d jobs on a 2-node cluster of %v-core Atom microservers\n",
		len(batch), cluster.AtomC2758().Cores)
	fmt.Printf("makespan %.0f s, energy %.1f kJ, EDP %.3g J·s\n\n",
		makespan, energy/1000, energy*makespan)

	fmt.Printf("%-3s %-5s %-6s %-5s %8s %8s %8s %5s %-14s\n",
		"id", "app", "class", "size", "submit", "start", "finish", "node", "cfg (f,hdfs,m)")
	for _, c := range sched.Completed() {
		fmt.Printf("%-3d %-5s %-6v %4.0fGB %8.0f %8.0f %8.0f %5d %-14v\n",
			c.ID, c.App, c.Class, c.SizeGB, c.Submitted, c.Started, c.Finished, c.Node, c.Cfg)
	}

	fmt.Println("\npairing priorities the scheduler used (derived from the database):")
	for _, cl := range workloads.Classes() {
		fmt.Printf("  running %v → prefer partner %v\n", cl, env.DB.PartnerPriority(cl))
	}
}

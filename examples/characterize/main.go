// Characterize: the live end of the pipeline.
//
// Instead of the analytic model, this example executes REAL MapReduce
// jobs — word counting, grep, sorting, TeraSort, Naïve Bayes, K-Means
// and PageRank on the in-process engine — over synthetic inputs, records
// a dstat-style resource trace for each, summarizes the traces into the
// 14-metric feature vectors, and classifies every job with the
// rule-based classifier of §6.1 (each metric compared to the average
// across the studied jobs).
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"
	"time"

	"ecost/internal/core"
	"ecost/internal/engine"
	"ecost/internal/perfctr"
)

// liveJob couples an engine job with its input and the per-record cost
// hints used to synthesize counter rows from the run's statistics.
type liveJob struct {
	job    engine.Job
	splits []engine.Split
}

func main() {
	centers := [][2]float64{{0, 0}, {5, 5}, {9, 1}}
	jobs := []liveJob{
		{engine.WordCount(), engine.SplitRecords(engine.TextLines(4000, 10, 500, 1), 8)},
		{engine.Grep("w0007"), engine.SplitRecords(engine.TextLines(4000, 10, 500, 2), 8)},
		{sortJob(), sortInput(3)},
		{engine.TeraSort(), engine.SplitRecords(engine.TeraRecords(4000, 4), 8)},
		{engine.NaiveBayes(), engine.SplitRecords(engine.LabelledDocs(3000, []string{"spam", "ham"}, 5), 8)},
		{engine.KMeansIteration(centers), engine.SplitRecords(engine.Points(6000, centers, 0.7, 6), 8)},
		{engine.PageRankIteration(0.85, 2000), engine.SplitRecords(engine.WebGraph(2000, 6, 7), 8)},
	}

	fmt.Println("running real MapReduce jobs on the in-process engine...")
	var vectors []perfctr.Vector
	names := make([]string, 0, len(jobs))
	for _, lj := range jobs {
		start := time.Now()
		res, err := engine.Run(lj.job, lj.splits)
		if err != nil {
			log.Fatal(err)
		}
		v, err := traceToVector(lj, res)
		if err != nil {
			log.Fatal(err)
		}
		vectors = append(vectors, v)
		names = append(names, lj.job.Name)
		fmt.Printf("  %-13s %6d→%-7d records, %2d maps/%d reduces, wall %v\n",
			lj.job.Name, res.Counters.MapInputRecords, res.Counters.OutputRecords,
			res.Counters.MapTasks, res.Counters.ReduceTasks,
			time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nfeature vectors (subset) and rule-based classification:")
	fmt.Printf("%-13s %8s %8s %8s %8s %8s  %s\n",
		"job", "CPUusr%", "iowait%", "readMB/s", "writMB/s", "LLCMPKI", "class")
	for i, v := range vectors {
		cls := core.RuleClassify(v, vectors)
		fmt.Printf("%-13s %8.1f %8.1f %8.1f %8.1f %8.1f  %v\n",
			names[i], v[perfctr.CPUUser], v[perfctr.CPUIOWait],
			v[perfctr.IOReadMBps], v[perfctr.IOWriteMBps], v[perfctr.LLCMPKI], cls)
	}
	fmt.Println("\n(the same classifier feeds ECoST's pairing decision tree; see examples/quickstart)")
}

func sortJob() engine.Job { return engine.Sort() }

func sortInput(seed int64) []engine.Split {
	recs := engine.TeraRecords(4000, seed)
	for i := range recs {
		recs[i] = engine.KV{Key: recs[i].Value[:10], Value: recs[i].Value}
	}
	return engine.SplitRecords(recs, 8)
}

// traceToVector converts a live run's statistics into a dstat-style
// monitor trace and summarizes it. Byte movement comes from the real
// record counts; the CPU/stall split is estimated from the ratio of
// compute (map+reduce invocations) to data moved, which is the same
// signal a real monitor sees — compute-heavy jobs touch few bytes per
// unit of work, I/O-heavy ones many.
func traceToVector(lj liveJob, res *engine.Result) (perfctr.Vector, error) {
	c := res.Counters
	var inBytes, outBytes float64
	for _, s := range lj.splits {
		for _, kv := range s {
			inBytes += float64(len(kv.Key) + len(kv.Value))
		}
	}
	for _, kv := range res.Output {
		outBytes += float64(len(kv.Key) + len(kv.Value))
	}
	shuffled := float64(c.MapOutputRecords) * 16 // intermediate traffic proxy
	moved := inBytes + outBytes + shuffled

	// Work per byte decides the CPU/IO split of the synthesized trace.
	workPerByte := float64(c.MapOutputRecords+c.ReduceInputRecords) / (moved + 1)
	cpuFrac := workPerByte / (workPerByte + 0.02)
	ioFrac := (1 - cpuFrac) * 0.7

	mon := perfctr.NewMonitor()
	seconds := 10
	for t := 1; t <= seconds; t++ {
		mon.Record(perfctr.Row{
			At:       float64(t),
			CPUUser:  100 * cpuFrac,
			CPUSys:   8,
			CPUWait:  100 * ioFrac,
			ReadMB:   inBytes / 1e6 / float64(seconds),
			WriteMB:  (outBytes + shuffled) / 1e6 / float64(seconds),
			ResidMB:  40 + shuffled/1e6,
			Instrs:   float64(c.MapOutputRecords+c.ReduceInputRecords+1) * 2200 / float64(seconds),
			Cycles:   float64(c.MapOutputRecords+c.ReduceInputRecords+1) * 2600 / float64(seconds),
			LLCMiss:  shuffled / 64 / float64(seconds),
			ICMiss:   float64(c.MapInputRecords) * 12 / float64(seconds),
			BrMiss:   float64(c.MapOutputRecords) * 2 / float64(seconds),
			Branches: float64(c.MapOutputRecords+1) * 110 / float64(seconds),
		})
	}
	return mon.Summarize()
}

// Autotune: the self-tuning prediction (STP) path in isolation.
//
// Two unknown applications arrive to be co-located. The example profiles
// them at the reference configuration, classifies them, and asks all
// four STP techniques (LkT, LR, REPTree, MLP) for the best joint
// frequency / HDFS block size / mapper configuration — then checks each
// prediction against the COLAO brute-force oracle, like Table 2 of the
// paper.
//
// Run with: go run ./examples/autotune [app1 sizeGB app2 sizeGB]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"ecost/internal/experiments"
	"ecost/internal/workloads"
)

func main() {
	nameA, sizeA := "nb", 5.0
	nameB, sizeB := "cf", 5.0
	if len(os.Args) == 5 {
		nameA = os.Args[1]
		nameB = os.Args[3]
		var err1, err2 error
		sizeA, err1 = strconv.ParseFloat(os.Args[2], 64)
		sizeB, err2 = strconv.ParseFloat(os.Args[4], 64)
		if err1 != nil || err2 != nil {
			log.Fatalf("usage: autotune app1 sizeGB app2 sizeGB")
		}
	}
	appA, err := workloads.ByName(nameA)
	if err != nil {
		log.Fatal(err)
	}
	appB, err := workloads.ByName(nameB)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building ECoST knowledge base...")
	env, err := experiments.NewEnv(experiments.FastOptions())
	if err != nil {
		log.Fatal(err)
	}

	oa, err := env.Observe(appA, sizeA)
	if err != nil {
		log.Fatal(err)
	}
	ob, err := env.Observe(appB, sizeB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincoming pair: %s (%gGB) + %s (%gGB)\n", appA.Name, sizeA, appB.Name, sizeB)
	ca := env.DB.Classifier().Classify(oa)
	cb := env.DB.Classifier().Classify(ob)
	fmt.Printf("  %s classified %v (true %v), nearest known: %s\n",
		appA.Name, ca, appA.Class, env.DB.Classifier().NearestKnown(oa).App.Name)
	fmt.Printf("  %s classified %v (true %v), nearest known: %s\n",
		appB.Name, cb, appB.Class, env.DB.Classifier().NearestKnown(ob).App.Name)

	colao, err := env.Oracle.COLAO(appA, sizeA*1024, appB, sizeB*1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCOLAO oracle (brute force over %d joint configs):\n", 28*400)
	fmt.Printf("  config %v | %v  → EDP %.4g, makespan %.0fs\n",
		colao.Cfg[0], colao.Cfg[1], colao.Out.EDP, colao.Out.Makespan)

	fmt.Println("\nSTP predictions (note: this demo trains the learning models on a")
	fmt.Println("deliberately coarse database for speed — the LkT lookup is exact, while")
	fmt.Println("LR/REPTree/MLP need the full-coverage database of cmd/ecost-bench to")
	fmt.Println("reach their EXPERIMENTS.md accuracy):")
	for _, s := range env.STPs() {
		cfg, err := s.PredictBest(oa, ob)
		if err != nil {
			log.Fatal(err)
		}
		out, err := env.Oracle.EvalPair(appA, sizeA*1024, appB, sizeB*1024, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %v | %v  → EDP %.4g (%.2f%% above oracle)\n",
			s.Name(), cfg[0], cfg[1], out.EDP, 100*(out.EDP-colao.Out.EDP)/colao.Out.EDP)
	}
}

// Datacenter: the scalability study in miniature (Figure 9).
//
// It runs the paper's workload scenarios through every application
// mapping policy on a cluster — untuned serial/spread mappings (SM,
// MNM1, MNM2), per-node mappings (SNM, CBM), tuning-only (PTM), the full
// ECoST pipeline, and the brute-force upper bound (UB) — and prints the
// EDP of each policy normalized to UB. It then replays one scenario
// through the instrumented online scheduler and prints the observability
// snapshot (queue behaviour, pairing-tree outcomes, energy by occupancy
// phase).
//
// Run with: go run ./examples/datacenter [nodes]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/sim"
)

func main() {
	nodes := 2
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 1 {
			log.Fatalf("usage: datacenter [nodes]")
		}
		nodes = n
	}

	fmt.Println("building ECoST knowledge base...")
	env, err := experiments.NewEnv(experiments.FastOptions())
	if err != nil {
		log.Fatal(err)
	}
	runner := &core.PolicyRunner{
		Oracle:   env.Oracle,
		DB:       env.DB,
		Tuner:    env.LkT, // most accurate on the coarse demo database
		Profiler: env.Profiler,
	}

	scenarios := []string{"WS3", "WS4", "WS8"} // I/O-only, mixed, all-classes
	fmt.Printf("\nEDP normalized to the brute-force upper bound (UB = 1.00), %d node(s):\n\n", nodes)
	fmt.Printf("%-9s", "scenario")
	for _, p := range core.Policies() {
		fmt.Printf("%8s", p)
	}
	fmt.Println()
	for _, name := range scenarios {
		wl, err := core.Scenario(name)
		if err != nil {
			log.Fatal(err)
		}
		ub, err := runner.Run(core.UB, wl, nodes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s", name)
		for _, p := range core.Policies() {
			res, err := runner.Run(p, wl, nodes)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", res.EDP/ub.EDP)
		}
		fmt.Println()
	}
	fmt.Println("\nSM/MNM/SNM/CBM run untuned (max frequency, 128MB blocks);")
	fmt.Println("PTM tunes without pairing; ECoST pairs by the class decision tree and tunes with LkT-STP")
	fmt.Println("(the most accurate technique on this demo's coarse database; see EXPERIMENTS.md).")

	if err := onlineWithMetrics(env, nodes); err != nil {
		log.Fatal(err)
	}
}

// onlineWithMetrics replays WS4 through the event-driven scheduler with
// the observability registry attached, then prints the deterministic
// snapshot — the same output `ecost-sim -metrics` produces.
func onlineWithMetrics(env *experiments.Env, nodes int) error {
	fmt.Println("\nonline ECoST replay of WS4 with observability enabled:")
	wl, err := core.Scenario("WS4")
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	model := mapreduce.NewModel(cluster.AtomC2758())
	model.Metrics = reg
	sched, err := core.NewOnlineScheduler(sim.NewEngine(), model, env.DB,
		core.NewMeteredSTP(env.LkT, model, reg), env.Profiler, nodes)
	if err != nil {
		return err
	}
	sched.SetMetrics(reg)
	for _, j := range wl.Jobs {
		sched.Submit(j.App, j.SizeGB, 0)
	}
	makespan, energy, err := sched.Run()
	if err != nil {
		return err
	}
	fmt.Printf("makespan %.0f s, energy %.0f J\n\n", makespan, energy)
	return reg.Snapshot(false).WriteText(os.Stdout)
}
